/** @file End-to-end system tests: detection, equivalence, performance. */

#include <gtest/gtest.h>

#include "monitor/factory.hh"
#include "power/model.hh"
#include "system/system.hh"
#include "trace/profile.hh"

namespace fade
{

namespace
{

constexpr std::uint64_t kWarm = 15000;
constexpr std::uint64_t kRun = 30000;

bool
hasReport(const Monitor &m, const std::string &kind)
{
    for (const auto &r : m.reports())
        if (r.kind == kind)
            return true;
    return false;
}

} // namespace

TEST(System, RunsAndProducesEvents)
{
    SystemConfig cfg;
    auto m = makeMonitor("AddrCheck");
    MonitoringSystem sys(cfg, specProfile("hmmer"), m.get());
    sys.warmup(kWarm);
    RunResult r = sys.run(kRun);
    EXPECT_GE(r.appInstructions, kRun);
    EXPECT_GT(r.monitoredEvents, kRun / 10);
    EXPECT_GT(r.appIpc, 0.3);
    EXPECT_GT(sys.fade()->stats().filteringRatio(), 0.8);
}

TEST(System, UnmonitoredBaselineHasNoEvents)
{
    SystemConfig cfg;
    cfg.accelerated = false;
    MonitoringSystem sys(cfg, specProfile("hmmer"), nullptr);
    sys.warmup(kWarm);
    RunResult r = sys.run(kRun);
    EXPECT_EQ(r.monitoredEvents, 0u);
    EXPECT_GT(r.appIpc, 1.0);
}

TEST(System, DeterministicAcrossRuns)
{
    auto once = [] {
        SystemConfig cfg;
        auto m = makeMonitor("MemLeak");
        MonitoringSystem sys(cfg, specProfile("gcc"), m.get());
        sys.warmup(kWarm);
        RunResult r = sys.run(kRun);
        return std::make_tuple(r.cycles, r.monitoredEvents,
                               sys.fade()->stats().filtered,
                               m->reports().size());
    };
    EXPECT_EQ(once(), once());
}

TEST(System, MonitoringSlowsDownApplication)
{
    BenchProfile prof = specProfile("hmmer");
    SystemConfig base;
    base.accelerated = false;
    MonitoringSystem baseline(base, prof, nullptr);
    baseline.warmup(kWarm);
    std::uint64_t baseCycles = baseline.run(kRun).cycles;

    SystemConfig unacc;
    unacc.accelerated = false;
    auto m1 = makeMonitor("MemLeak");
    MonitoringSystem sysU(unacc, prof, m1.get());
    sysU.warmup(kWarm);
    std::uint64_t unaccCycles = sysU.run(kRun).cycles;

    SystemConfig accel;
    auto m2 = makeMonitor("MemLeak");
    MonitoringSystem sysA(accel, prof, m2.get());
    sysA.warmup(kWarm);
    std::uint64_t fadeCycles = sysA.run(kRun).cycles;

    EXPECT_GT(unaccCycles, 3 * baseCycles)
        << "unaccelerated propagation tracking is expensive";
    EXPECT_LT(fadeCycles, unaccCycles / 2)
        << "FADE recovers most of the slowdown";
    EXPECT_GT(fadeCycles, baseCycles) << "monitoring is never free";
}

TEST(System, TwoCoreNoSlowerThanSingleCore)
{
    BenchProfile prof = specProfile("hmmer");
    SystemConfig sc;
    auto m1 = makeMonitor("MemLeak");
    MonitoringSystem single(sc, prof, m1.get());
    single.warmup(kWarm);
    std::uint64_t scCycles = single.run(kRun).cycles;

    SystemConfig tc;
    tc.twoCore = true;
    auto m2 = makeMonitor("MemLeak");
    MonitoringSystem dual(tc, prof, m2.get());
    dual.warmup(kWarm);
    std::uint64_t tcCycles = dual.run(kRun).cycles;

    EXPECT_LE(tcCycles, scCycles * 110 / 100);
}

TEST(System, NonBlockingNoSlowerThanBlocking)
{
    BenchProfile prof = specProfile("gcc");
    SystemConfig nb;
    auto m1 = makeMonitor("MemLeak");
    MonitoringSystem sysN(nb, prof, m1.get());
    sysN.warmup(kWarm);
    std::uint64_t nbCycles = sysN.run(kRun).cycles;

    SystemConfig blk;
    blk.fade.nonBlocking = false;
    auto m2 = makeMonitor("MemLeak");
    MonitoringSystem sysB(blk, prof, m2.get());
    sysB.warmup(kWarm);
    std::uint64_t blkCycles = sysB.run(kRun).cycles;

    EXPECT_LT(nbCycles, blkCycles);
}

TEST(System, AcceleratedMatchesUnacceleratedDetection)
{
    // Functional equivalence: the same injected bugs are detected with
    // and without FADE (filtering elides work, never detection).
    for (const char *mon : {"AddrCheck", "TaintCheck", "MemLeak"}) {
        TruthBits bug = mon == std::string("AddrCheck")
                            ? truthAccessUnallocated
                            : mon == std::string("TaintCheck")
                                  ? truthTaintedJump
                                  : truthLeakDrop;
        const char *kind = mon == std::string("AddrCheck")
                               ? "unallocated-access"
                               : mon == std::string("TaintCheck")
                                     ? "tainted-jump"
                                     : "memory-leak";
        for (bool accel : {false, true}) {
            SystemConfig cfg;
            cfg.accelerated = accel;
            auto m = makeMonitor(mon);
            MonitoringSystem sys(cfg, specProfile("hmmer"), m.get());
            sys.warmup(kWarm);
            sys.generator().injectBug(bug);
            sys.run(kRun);
            EXPECT_TRUE(hasReport(*m, kind))
                << mon << " accel=" << accel;
        }
    }
}

TEST(System, UninitUseDetectedByMemCheck)
{
    SystemConfig cfg;
    auto m = makeMonitor("MemCheck");
    MonitoringSystem sys(cfg, specProfile("hmmer"), m.get());
    sys.warmup(kWarm);
    sys.generator().injectBug(truthUseUninit);
    sys.run(kRun);
    EXPECT_TRUE(hasReport(*m, "uninit-use"));
}

TEST(System, AtomicityViolationDetected)
{
    SystemConfig cfg;
    auto m = makeMonitor("AtomCheck");
    MonitoringSystem sys(cfg, parallelProfile("blackscholes"), m.get());
    sys.warmup(kWarm);
    sys.generator().injectBug(truthAtomViolation);
    sys.run(kRun);
    EXPECT_TRUE(hasReport(*m, "atomicity-violation"));
}

TEST(System, CleanRunsReportNoAddrViolationsOnQuietMonitors)
{
    // Without injection, AddrCheck should stay quiet on a well-formed
    // stream (every access targets allocated memory).
    SystemConfig cfg;
    auto m = makeMonitor("AddrCheck");
    MonitoringSystem sys(cfg, specProfile("hmmer"), m.get());
    sys.warmup(kWarm);
    sys.run(kRun);
    EXPECT_EQ(m->reports().size(), 0u);
}

TEST(System, FilteredPlusSoftwareEqualsAllEvents)
{
    SystemConfig cfg;
    auto m = makeMonitor("MemLeak");
    MonitoringSystem sys(cfg, specProfile("gobmk"), m.get());
    sys.warmup(kWarm);
    RunResult r = sys.run(kRun);
    const FadeStats &s = sys.fade()->stats();
    EXPECT_EQ(s.instEvents,
              s.filtered + s.unfiltered + s.partialPass + s.partialFail);
    EXPECT_LE(s.instEvents + s.stackEvents + s.highLevelEvents,
              r.monitoredEvents + 64)
        << "events processed cannot exceed events produced (+in flight)";
}

TEST(System, PerfectConsumerNeverBackpressures)
{
    SystemConfig cfg;
    cfg.perfectConsumer = true;
    cfg.eqCapacity = 0;
    auto m = makeMonitor("MemLeak");
    MonitoringSystem sys(cfg, specProfile("bzip"), m.get());
    sys.warmup(kWarm);
    RunResult r = sys.run(kRun);
    EXPECT_EQ(r.appStallCycles, 0u);
}

TEST(System, EventQueueBackpressureWithTinyQueue)
{
    SystemConfig cfg;
    cfg.eqCapacity = 2;
    auto m = makeMonitor("MemLeak");
    MonitoringSystem sys(cfg, specProfile("bzip"), m.get());
    sys.warmup(kWarm);
    RunResult r = sys.run(kRun);
    EXPECT_GT(r.appStallCycles, 0u);
}

TEST(System, CoreTypeSensitivityShape)
{
    // Unaccelerated monitoring should degrade more on the in-order
    // core than FADE-enabled monitoring does (Fig. 10's shape).
    BenchProfile prof = specProfile("hmmer");
    auto slowdown = [&](bool accel, const CoreParams &core) {
        SystemConfig base;
        base.core = core;
        base.accelerated = false;
        MonitoringSystem b(base, prof, nullptr);
        b.warmup(kWarm);
        std::uint64_t bc = b.run(kRun).cycles;
        SystemConfig cfg;
        cfg.core = core;
        cfg.accelerated = accel;
        auto m = makeMonitor("MemCheck");
        MonitoringSystem sys(cfg, prof, m.get());
        sys.warmup(kWarm);
        return double(sys.run(kRun).cycles) / bc;
    };
    double unaccWide = slowdown(false, aggressiveOooParams());
    double fadeWide = slowdown(true, aggressiveOooParams());
    double fadeNarrow = slowdown(true, inOrderParams());
    EXPECT_GT(unaccWide, fadeWide);
    EXPECT_LT(fadeNarrow, unaccWide)
        << "FADE on in-order still beats unaccelerated on 4-way";
}

TEST(PowerModel, MatchesPaperDesignPoint)
{
    FadeParams params;
    AreaPower logic = fadeLogicTotal(inventoryFor(params, 32, 16));
    EXPECT_NEAR(logic.areaMm2, 0.09, 0.015);
    EXPECT_NEAR(logic.powerMw, 122.0, 15.0);
    AreaPower cache = mdCacheAreaPower(MdCacheParams{});
    EXPECT_NEAR(cache.areaMm2, 0.03, 0.012);
    EXPECT_NEAR(cache.powerMw, 151.0, 15.0);
    EXPECT_NEAR(mdCacheAccessNs(MdCacheParams{}), 0.3, 0.05);
}

TEST(PowerModel, BlockingVariantIsSmaller)
{
    FadeParams nb, blk;
    blk.nonBlocking = false;
    AreaPower a = fadeLogicTotal(inventoryFor(nb, 32, 16));
    AreaPower b = fadeLogicTotal(inventoryFor(blk, 32, 16));
    EXPECT_LT(b.areaMm2, a.areaMm2);
    EXPECT_LT(b.powerMw, a.powerMw);
}

TEST(PowerModel, ScalesWithGeometry)
{
    FadeParams p;
    AreaPower small = fadeLogicTotal(inventoryFor(p, 16, 8));
    AreaPower big = fadeLogicTotal(inventoryFor(p, 128, 64));
    EXPECT_LT(small.areaMm2, big.areaMm2);
    MdCacheParams c8;
    c8.sizeBytes = 8192;
    EXPECT_GT(mdCacheAreaPower(c8).areaMm2,
              mdCacheAreaPower(MdCacheParams{}).areaMm2);
    EXPECT_GT(mdCacheAccessNs(c8), mdCacheAccessNs(MdCacheParams{}));
}

/** Property sweep: every monitor/config combination runs clean. */
class SystemMatrix
    : public ::testing::TestWithParam<
          std::tuple<std::string, bool, bool>>
{
};

TEST_P(SystemMatrix, RunsWithoutViolatingInvariants)
{
    auto [mon, accel, twoCore] = GetParam();
    SystemConfig cfg;
    cfg.accelerated = accel;
    cfg.twoCore = twoCore;
    BenchProfile prof = mon == "AtomCheck" ? parallelProfile("water")
                                           : specProfile("hmmer");
    auto m = makeMonitor(mon);
    MonitoringSystem sys(cfg, prof, m.get());
    sys.warmup(kWarm / 3);
    RunResult r = sys.run(kRun / 3);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.monitoredEvents, 0u);
    EXPECT_GT(r.appIpc, 0.05);
    if (accel) {
        const FadeStats &s = sys.fade()->stats();
        EXPECT_EQ(s.instEvents, s.filtered + s.unfiltered +
                                    s.partialPass + s.partialFail);
    } else {
        EXPECT_GT(r.handlersRun, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, SystemMatrix,
    ::testing::Combine(::testing::Values("AddrCheck", "MemCheck",
                                         "TaintCheck", "MemLeak",
                                         "AtomCheck"),
                       ::testing::Bool(), ::testing::Bool()));

} // namespace fade
