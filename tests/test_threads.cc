/**
 * @file
 * Multi-threaded process workloads end to end: the differential matrix
 * over shard count x scheduler policy x execution engine x topology
 * asserting that the cross-shard monitors (RaceCheck, SharedTaint)
 * report injected races/taint flows with identical fingerprints on
 * every shape, that clean runs stay quiet, and that repeated runs are
 * deterministic — plus the guardrails of the thread/shard resolution
 * machinery, capture/replay of a threaded process, and a randomized
 * property test of FadeGroup's group-serialization protocol.
 *
 * Matrix soundness notes:
 *  - Warmup is sized so every hosted thread finishes its entire
 *    SyncPlan script during warmup (warmup() drains at the end, so the
 *    per-thread logs are complete and identical before the measured
 *    slice on every shape; endSlice() does not drain, so a plan still
 *    in flight there would truncate logs differently per topology).
 *  - Across different shard counts only the REPORTS are comparable
 *    (they carry placement-invariant keys); timing fingerprints
 *    legitimately differ. Within one fixed shape the full result
 *    fingerprint must be bit-identical across scheduler policies and
 *    engines sharing the per-cycle timing model, and across repeats.
 *  - The run-grain engine is in the detection matrix too: thread
 *    interleaving is retirement-quantum-driven, so the instruction
 *    streams — and with them the report unions — are engine-invariant
 *    even though run-grain's modeled cycle counts are not. Its full
 *    fingerprint is pinned per shape against a run-grain reference
 *    (policy-invariant, deterministic).
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "monitor/racecheck.hh"
#include "system/multicore.hh"
#include "testutil.hh"
#include "trace/threads.hh"

namespace fade
{
namespace
{

constexpr std::uint64_t measureInsts = 1500;

BenchProfile
processProfile(unsigned races, unsigned flows)
{
    BenchProfile p = threadedProfile("ocean");
    p.injectRaces = races;
    p.injectTaintFlows = flows;
    return p;
}

/** Warmup so every hosted thread crosses the plan horizon: threads
 *  time-slice round-robin on their shard's core, so a shard hosting h
 *  threads needs ~h times the horizon plus slack for quantum skew. */
std::uint64_t
warmFor(const BenchProfile &p, unsigned shards)
{
    const unsigned hosted = p.procThreads / shards;
    const std::uint64_t quantum = p.switchQuantum ? p.switchQuantum : 64;
    return hosted * (threadedPlanHorizon(p) + 2 * quantum) + 1024;
}

MultiCoreConfig
processConfig(const BenchProfile &p, const std::string &monitor,
              unsigned shards, unsigned clusters,
              SchedulerPolicy policy = SchedulerPolicy::Lockstep,
              Engine engine = Engine::PerCycle)
{
    MultiCoreConfig cfg;
    cfg.monitor = monitor;
    cfg.workloads = {p};
    cfg.numShards = shards;
    cfg.topology.clusters = clusters;
    cfg.scheduler.policy = policy;
    cfg.engine = engine;
    return cfg;
}

/** Placement-invariant key of one report (everything but arrival). */
std::string
reportKey(const BugReport &r)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "|%llx|%llx|%llx|",
                  (unsigned long long)r.pc, (unsigned long long)r.addr,
                  (unsigned long long)r.seq);
    return r.kind + buf + r.detail;
}

struct ProcessRun
{
    /** Sorted union of every shard's report keys. */
    std::vector<std::string> reports;
    std::vector<std::uint64_t> fingerprint;
    MultiCoreResult result;
};

ProcessRun
runProcess(const MultiCoreConfig &cfg, const BenchProfile &p)
{
    MultiCoreSystem sys(cfg);
    sys.warmup(warmFor(p, sys.numShards()));
    ProcessRun r;
    r.result = sys.run(measureInsts);
    r.fingerprint = resultFingerprint(sys, r.result);
    for (unsigned i = 0; i < sys.numShards(); ++i)
        if (const Monitor *m = sys.monitor(i))
            for (const BugReport &b : m->reports())
                r.reports.push_back(reportKey(b));
    std::sort(r.reports.begin(), r.reports.end());
    return r;
}

struct Shape
{
    unsigned shards;
    unsigned clusters;
};

constexpr Shape matrixShapes[] = {{1, 1}, {2, 1}, {4, 1}, {4, 2}};
constexpr SchedulerPolicy matrixPolicies[] = {
    SchedulerPolicy::Lockstep, SchedulerPolicy::ParallelBatched};
constexpr Engine matrixEngines[] = {Engine::PerCycle, Engine::Batched,
                                    Engine::RunGrain};

/** Run the full N x policy x engine x topology matrix and demand the
 *  report union matches the N=1 reference bit for bit everywhere. */
void
checkDetectionMatrix(const BenchProfile &p, const std::string &monitor,
                     const char *expectKind, std::size_t expectCount)
{
    ProcessRun ref =
        runProcess(processConfig(p, monitor, 1, 1), p);
    ASSERT_EQ(ref.reports.size(), expectCount);
    for (const std::string &r : ref.reports)
        EXPECT_EQ(r.compare(0, std::string(expectKind).size(),
                            expectKind),
                  0)
            << r;

    for (const Shape &s : matrixShapes)
        for (SchedulerPolicy pol : matrixPolicies)
            for (Engine eng : matrixEngines) {
                ProcessRun run = runProcess(
                    processConfig(p, monitor, s.shards, s.clusters,
                                  pol, eng),
                    p);
                EXPECT_EQ(run.reports, ref.reports)
                    << monitor << " diverged at shards=" << s.shards
                    << " clusters=" << s.clusters
                    << " policy=" << unsigned(pol)
                    << " engine=" << unsigned(eng);
            }
}

// ------------------------------------------------------------------
// The differential matrix.
// ------------------------------------------------------------------

TEST(ThreadMatrix, InjectedRacesDetectedEverywhere)
{
    checkDetectionMatrix(processProfile(3, 0), "RaceCheck",
                         "data-race", 3);
}

TEST(ThreadMatrix, InjectedTaintFlowsDetectedEverywhere)
{
    checkDetectionMatrix(processProfile(0, 2), "SharedTaint",
                         "cross-thread-taint", 2);
}

TEST(ThreadMatrix, CleanRunsStayQuiet)
{
    const BenchProfile clean = processProfile(0, 0);
    for (const char *monitor : {"RaceCheck", "SharedTaint"})
        for (const Shape &s : {Shape{1, 1}, Shape{4, 1}, Shape{4, 2}}) {
            ProcessRun run = runProcess(
                processConfig(clean, monitor, s.shards, s.clusters),
                clean);
            EXPECT_TRUE(run.reports.empty())
                << monitor << " reported on a clean run at shards="
                << s.shards << " clusters=" << s.clusters << ": "
                << run.reports.front();
        }
}

TEST(ThreadMatrix, MonitorsStayInTheirLane)
{
    // Taint flows are lock-ordered hand-offs: no race. Races carry no
    // taint: nothing for SharedTaint.
    const BenchProfile flows = processProfile(0, 2);
    EXPECT_TRUE(
        runProcess(processConfig(flows, "RaceCheck", 2, 1), flows)
            .reports.empty());
    const BenchProfile races = processProfile(3, 0);
    EXPECT_TRUE(
        runProcess(processConfig(races, "SharedTaint", 2, 1), races)
            .reports.empty());
}

TEST(ThreadMatrix, RepeatedRunsAreDeterministic)
{
    const BenchProfile p = processProfile(3, 1);
    for (Engine eng : {Engine::Batched, Engine::RunGrain}) {
        const MultiCoreConfig cfg =
            processConfig(p, "RaceCheck", 4, 2,
                          SchedulerPolicy::ParallelBatched, eng);
        ProcessRun a = runProcess(cfg, p);
        ProcessRun b = runProcess(cfg, p);
        EXPECT_EQ(a.fingerprint, b.fingerprint) << unsigned(eng);
        EXPECT_EQ(a.reports, b.reports) << unsigned(eng);
    }
}

TEST(ThreadMatrix, PolicyAndEngineBitIdenticalPerShape)
{
    // Per-cycle and batched share one timing model, so their full
    // fingerprints (cycle counts included) match the per-shape
    // reference bit for bit under either scheduler policy. The
    // run-grain engine models timing: its full fingerprint is pinned
    // against its own per-shape reference instead — still
    // policy-invariant — while its reports join the cross-engine
    // detection matrix above.
    const BenchProfile p = processProfile(2, 1);
    for (const Shape &s : {Shape{2, 1}, Shape{4, 2}}) {
        ProcessRun ref = runProcess(
            processConfig(p, "RaceCheck", s.shards, s.clusters), p);
        ProcessRun grainRef = runProcess(
            processConfig(p, "RaceCheck", s.shards, s.clusters,
                          SchedulerPolicy::Lockstep, Engine::RunGrain),
            p);
        EXPECT_EQ(grainRef.reports, ref.reports)
            << "shards=" << s.shards;
        for (SchedulerPolicy pol : matrixPolicies)
            for (Engine eng : matrixEngines) {
                ProcessRun run = runProcess(
                    processConfig(p, "RaceCheck", s.shards, s.clusters,
                                  pol, eng),
                    p);
                const ProcessRun &want =
                    eng == Engine::RunGrain ? grainRef : ref;
                EXPECT_EQ(run.fingerprint, want.fingerprint)
                    << "shards=" << s.shards << " policy="
                    << unsigned(pol) << " engine=" << unsigned(eng);
            }
    }
}

TEST(ThreadMatrix, ClusteredShapeRoutesRemoteHeapTraffic)
{
    // Threads share one heap, so a clustered topology must see
    // cross-cluster (remote-slice) L2 traffic from the shared plan.
    const BenchProfile p = processProfile(3, 0);
    ProcessRun run =
        runProcess(processConfig(p, "RaceCheck", 4, 2), p);
    EXPECT_GT(run.result.l2RemoteAccesses, 0u);
}

// ------------------------------------------------------------------
// Capture / replay of a threaded process.
// ------------------------------------------------------------------

TEST(ThreadCapture, ReplayReproducesReportsAndHash)
{
    const BenchProfile p = processProfile(3, 1);
    test::TempFile trace("fade_mt_trace");

    MultiCoreConfig cap = processConfig(p, "RaceCheck", 2, 1);
    cap.traceOut = trace.path();
    const std::uint64_t warm = warmFor(p, 2);

    std::uint64_t capHash = 0;
    std::vector<std::string> capReports;
    {
        MultiCoreSystem sys(cap);
        sys.warmup(warm);
        MultiCoreResult res = sys.run(measureInsts);
        capHash = fingerprintHash(resultFingerprint(sys, res));
        for (unsigned i = 0; i < sys.numShards(); ++i)
            for (const BugReport &b : sys.monitor(i)->reports())
                capReports.push_back(reportKey(b));
        std::sort(capReports.begin(), capReports.end());
        EXPECT_FALSE(capReports.empty());
        sys.closeTrace(capHash);
    }

    MultiCoreConfig rep = replayConfig(trace.path());
    ASSERT_EQ(rep.workloads.size(), 2u);
    EXPECT_EQ(rep.workloads[0].procThreads, p.procThreads);
    const TraceManifest m = TraceReader(trace.path()).manifest();
    ASSERT_TRUE(m.present);

    MultiCoreSystem sys(rep);
    sys.warmup(m.warmupInstructions);
    MultiCoreResult res = sys.run(m.measureInstructions);
    EXPECT_EQ(fingerprintHash(resultFingerprint(sys, res)), capHash);
    std::vector<std::string> repReports;
    for (unsigned i = 0; i < sys.numShards(); ++i)
        for (const BugReport &b : sys.monitor(i)->reports())
            repReports.push_back(reportKey(b));
    std::sort(repReports.begin(), repReports.end());
    EXPECT_EQ(repReports, capReports);
}

TEST(ThreadCapture, ThreadCountMismatchRejectedOnReplay)
{
    const BenchProfile p = processProfile(0, 0);
    test::TempFile trace("fade_mt_mismatch");

    MultiCoreConfig cap = processConfig(p, "RaceCheck", 1, 1);
    cap.traceOut = trace.path();
    {
        MultiCoreSystem sys(cap);
        sys.warmup(warmFor(p, 1));
        sys.run(measureInsts);
        sys.closeTrace();
    }

    MultiCoreConfig rep = replayConfig(trace.path());
    rep.workloads.at(0).procThreads = 0;
    EXPECT_EXIT(MultiCoreSystem{rep}, testing::ExitedWithCode(1),
                "process threads");
}

// ------------------------------------------------------------------
// Guardrails of thread-count / shard / topology resolution.
// ------------------------------------------------------------------

TEST(ThreadGuards, MoreThreadsThanMdRegistersIsFatal)
{
    const BenchProfile p = threadedProfile("ocean", 8);
    MultiCoreConfig cfg = processConfig(p, "RaceCheck", 1, 1);
    EXPECT_EXIT(MultiCoreSystem{cfg}, testing::ExitedWithCode(1),
                "register file supports");
}

TEST(ThreadGuards, ThreadsMustDivideAcrossShards)
{
    const BenchProfile p = threadedProfile("ocean", 4);
    MultiCoreConfig cfg = processConfig(p, "RaceCheck", 3, 1);
    EXPECT_EXIT(MultiCoreSystem{cfg}, testing::ExitedWithCode(1),
                "divide evenly");
}

TEST(ThreadGuards, MoreShardsThanThreadsIsFatal)
{
    const BenchProfile p = threadedProfile("ocean", 4);
    MultiCoreConfig cfg = processConfig(p, "RaceCheck", 8, 1);
    EXPECT_EXIT(MultiCoreSystem{cfg}, testing::ExitedWithCode(1),
                "more shards");
}

TEST(ThreadGuards, ProcessCannotMixWithOtherWorkloads)
{
    MultiCoreConfig cfg =
        processConfig(threadedProfile("ocean", 4), "RaceCheck", 2, 1);
    cfg.workloads.push_back(specProfile("mcf"));
    EXPECT_EXIT(MultiCoreSystem{cfg}, testing::ExitedWithCode(1),
                "cannot mix");
}

TEST(ThreadGuards, ClusterCountMustDivideShards)
{
    const BenchProfile p = threadedProfile("ocean", 4);
    MultiCoreConfig cfg = processConfig(p, "RaceCheck", 4, 3);
    EXPECT_EXIT(MultiCoreSystem{cfg}, testing::ExitedWithCode(1),
                "divide evenly across");
}

TEST(ThreadGuards, FadesPerShardOutOfRangeIsFatal)
{
    const BenchProfile p = threadedProfile("ocean", 4);
    MultiCoreConfig cfg = processConfig(p, "RaceCheck", 2, 1);
    cfg.topology.fadesPerShard = maxFadesPerShard + 1;
    EXPECT_EXIT(MultiCoreSystem{cfg}, testing::ExitedWithCode(1),
                "fadesPerShard must be in");
}

// ------------------------------------------------------------------
// FadeGroup group-serialization property (K = 2, randomized).
// ------------------------------------------------------------------

TEST(FadeGroupSerial, RandomizedStreamSerializesHighLevelEvents)
{
    for (std::uint64_t seed : {11u, 23u, 47u}) {
        MonitorContext ctx(0);
        RaceCheck mon;
        FadeGroup g(2, FadeParams{}, ctx, nullptr, 0);
        for (unsigned u = 0; u < g.size(); ++u)
            mon.programFade(g.unit(u).eventTable(), g.unit(u).invRf());
        BoundedQueue<MonEvent> eq(8);
        BoundedQueue<UnfilteredEvent> ueq(16);
        g.bind(&eq, &ueq);

        // Random mix: filterable instruction events, SUU stack bursts,
        // and software-only synchronization events.
        Rng rng(seed);
        std::vector<MonEvent> events;
        std::uint64_t serializing = 0;
        for (unsigned i = 0; i < 400; ++i) {
            MonEvent ev;
            ev.tid = ThreadId(rng.range(4));
            ev.appPc = 0x1000 + 4 * i;
            ev.seq = i + 1;
            const unsigned roll = rng.range(100);
            if (roll < 70) {
                ev.kind = EventKind::Inst;
                ev.eventId = rng.range(2) ? evStore : evLoad;
                ev.appAddr = procSharedBase + 4 * rng.range(1024);
                ev.numSrc = 1;
            } else if (roll < 85) {
                ev.kind = rng.range(2) ? EventKind::LockAcquire
                                       : EventKind::LockRelease;
                ev.appAddr = procLockBase + 64 * rng.range(6);
                ev.len = rng.range(16);
                ++serializing;
            } else {
                ev.kind = EventKind::StackCall;
                ev.appAddr = 0x7fff0000 + 64 * rng.range(64);
                ev.len = 16 + 8 * rng.range(4);
                ++serializing;
            }
            events.push_back(ev);
        }

        std::size_t next = 0;
        Cycle now = 0;
        constexpr Cycle limit = 500000;
        while ((next < events.size() || !eq.empty() || !ueq.empty() ||
                !g.quiesced()) &&
               now < limit) {
            while (next < events.size() && eq.push(events[next]))
                ++next;
            const bool quietBefore = g.quiesced();
            const std::uint64_t serBefore = g.serialized();
            g.tick(now++);
            if (g.serialized() != serBefore) {
                // A serializing event enters only a fully quiesced
                // group, and at most one per cycle.
                EXPECT_TRUE(quietBefore) << "cycle " << now - 1;
                EXPECT_EQ(g.serialized(), serBefore + 1);
            }
            while (!ueq.empty()) {
                UnfilteredEvent u = ueq.pop();
                g.handlerDone(u.ev);
            }
        }

        ASSERT_LT(now, limit) << "group failed to drain (seed "
                              << seed << ")";
        EXPECT_TRUE(eq.empty());
        EXPECT_TRUE(g.quiesced());
        EXPECT_EQ(g.serialized(), serializing);
        // Strict rotation: every event admitted, split evenly.
        const std::uint64_t s0 = g.steeredTo(0);
        const std::uint64_t s1 = g.steeredTo(1);
        EXPECT_EQ(s0 + s1, events.size());
        EXPECT_LE(s0 > s1 ? s0 - s1 : s1 - s0, 1u);
    }
}

} // namespace
} // namespace fade
