/**
 * @file
 * Clustered-topology tests: flat-case bit-identity against pre-refactor
 * golden fingerprints, cross-policy/engine/run determinism over the
 * clusters x fadesPerShard matrix, directory routing invariants,
 * rollup sums, and multi-FADE steering.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "mem/directory.hh"
#include "monitor/factory.hh"
#include "system/multicore.hh"
#include "trace/profile.hh"

namespace fade
{

namespace
{

constexpr std::uint64_t kWarm = 10000;
constexpr std::uint64_t kRun = 20000;

/** FNV-1a over the fingerprint words (golden-value anchoring). */
std::uint64_t
fnv1a(const std::vector<std::uint64_t> &v)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (std::uint64_t w : v)
        for (int b = 0; b < 8; ++b) {
            h ^= (w >> (8 * b)) & 0xFF;
            h *= 1099511628211ULL;
        }
    return h;
}

struct TopoRun
{
    MultiCoreResult result;
    std::vector<std::uint64_t> fingerprint;
    std::vector<std::size_t> reports;
};

TopoRun
runTopology(unsigned shards, const char *monitor, const char *anchor,
            unsigned clusters, unsigned fadesPerShard,
            SchedulerPolicy pol = SchedulerPolicy::Lockstep,
            Engine eng = Engine::PerCycle)
{
    MultiCoreConfig cfg;
    cfg.numShards = shards;
    cfg.monitor = monitor;
    cfg.workloads = multiprogramWorkloads(anchor);
    cfg.scheduler.policy = pol;
    cfg.engine = eng;
    cfg.topology.clusters = clusters;
    cfg.topology.fadesPerShard = fadesPerShard;
    MultiCoreSystem sys(cfg);
    sys.warmup(kWarm);
    TopoRun t;
    t.result = sys.run(kRun);
    t.fingerprint = resultFingerprint(sys, t.result);
    for (unsigned i = 0; i < sys.numShards(); ++i)
        t.reports.push_back(sys.monitor(i) ? sys.monitor(i)->reports().size()
                                           : 0);
    return t;
}

} // namespace

TEST(Topology, ResolvesShardCounts)
{
    Topology t;
    EXPECT_EQ(t.resolveShards(1), 1u);
    EXPECT_EQ(t.resolveShards(8), 8u);

    t.clusters = 2;
    EXPECT_EQ(t.resolveShards(8), 8u);
    EXPECT_EQ(t.clusterOf(0, 4), 0u);
    EXPECT_EQ(t.clusterOf(3, 4), 0u);
    EXPECT_EQ(t.clusterOf(4, 4), 1u);
    EXPECT_EQ(t.clusterOf(7, 4), 1u);

    // shardsPerCluster is authoritative when set: 2x4 = 8 shards.
    t.shardsPerCluster = 4;
    EXPECT_EQ(t.resolveShards(1), 8u);

    Topology bad;
    bad.clusters = 3;
    EXPECT_EXIT(bad.resolveShards(4), testing::ExitedWithCode(1),
                "divide evenly");
}

TEST(Topology, GoldenFlatFingerprints)
{
    // Captured from the flat (pre-topology) MultiCoreSystem at the PR 4
    // commit, before the cluster/directory/FadeGroup refactor: the
    // 1-cluster, 1-FADE system must reproduce them bit for bit. A
    // mismatch means the refactor changed flat-system behavior.
    struct Golden
    {
        const char *anchor;
        const char *monitor;
        unsigned n;
        bool parallel;
        bool batched;
        std::uint64_t hash;
    };
    const Golden golden[] = {
        {"hmmer", "MemLeak", 1, false, false, 0xE78BB961937DC23FULL},
        {"hmmer", "MemLeak", 2, false, false, 0x0F0E431480908B64ULL},
        {"gcc", "AddrCheck", 4, true, true, 0x11390AE9F493BC00ULL},
        {"mcf", "TaintCheck", 2, false, true, 0xC56DDA0D768F46D8ULL},
        {"astar", "AddrCheck", 1, true, false, 0x1882ECA0818C5BB9ULL},
        {"bzip", "MemCheck", 4, false, false, 0x6DA1301FB8A8DBB3ULL},
        {"hmmer", "", 2, false, false, 0x10A23F27F9FF8C70ULL},
        {"gobmk", "MemLeak", 8, true, true, 0x618FC551A025696CULL},
    };
    for (const Golden &g : golden) {
        SCOPED_TRACE(std::string(g.anchor) + "/" + g.monitor + "/N=" +
                     std::to_string(g.n));
        TopoRun t = runTopology(
            g.n, g.monitor, g.anchor, 1, 1,
            g.parallel ? SchedulerPolicy::ParallelBatched
                       : SchedulerPolicy::Lockstep,
            g.batched ? Engine::Batched : Engine::PerCycle);
        EXPECT_EQ(fnv1a(t.fingerprint), g.hash);
    }
}

TEST(Topology, DeterministicAcrossPoliciesEnginesAndRuns)
{
    // For every topology in the matrix, all four policy x engine
    // combinations and a repeated run must agree bit for bit: the
    // scheduler's and the batched engine's equality arguments extend
    // to clustered, multi-FADE systems.
    for (unsigned clusters : {1u, 2u, 4u}) {
        for (unsigned k : {1u, 2u}) {
            SCOPED_TRACE("clusters=" + std::to_string(clusters) +
                         " fades=" + std::to_string(k));
            TopoRun ref = runTopology(4, "MemLeak", "hmmer", clusters, k);
            for (auto pol : {SchedulerPolicy::Lockstep,
                             SchedulerPolicy::ParallelBatched}) {
                for (Engine eng :
                     {Engine::PerCycle, Engine::Batched}) {
                    TopoRun t = runTopology(4, "MemLeak", "hmmer",
                                            clusters, k, pol, eng);
                    EXPECT_EQ(t.fingerprint, ref.fingerprint)
                        << "policy=" << int(pol)
                        << " engine=" << int(eng);
                    EXPECT_EQ(t.reports, ref.reports);
                }
            }
        }
    }
}

TEST(Topology, RoutingIsolationAcrossClusters)
{
    // A bug injected into one shard of a clustered system surfaces in
    // that shard's monitor and nowhere else, and no event ever crosses
    // shards — clustering changes memory latency, never event routing.
    MultiCoreConfig cfg;
    cfg.numShards = 4;
    cfg.monitor = "AddrCheck";
    cfg.workloads = {specProfile("hmmer"), specProfile("gcc"),
                     specProfile("bzip"), specProfile("gobmk")};
    cfg.topology.clusters = 2;
    cfg.topology.fadesPerShard = 2;
    MultiCoreSystem sys(cfg);
    sys.warmup(kWarm);
    sys.shard(2).generator().injectBug(truthAccessUnallocated);
    MultiCoreResult r = sys.run(kRun);
    for (unsigned i = 0; i < 4; ++i) {
        SCOPED_TRACE(i);
        if (i == 2)
            EXPECT_FALSE(sys.monitor(i)->reports().empty());
        else
            EXPECT_TRUE(sys.monitor(i)->reports().empty());
    }
    EXPECT_EQ(r.fade.crossShardEvents, 0u);
}

TEST(Topology, RollupSumsOverShardsAndClusters)
{
    for (unsigned clusters : {2u, 4u}) {
        SCOPED_TRACE(clusters);
        TopoRun t = runTopology(4, "MemLeak", "gcc", clusters, 2);
        const MultiCoreResult &r = t.result;
        std::uint64_t insts = 0, events = 0, instEvents = 0;
        std::uint64_t filtered = 0, occTotal = 0, maxCycles = 0;
        std::uint64_t local = 0, remote = 0;
        for (const ShardResult &s : r.shards) {
            insts += s.run.appInstructions;
            events += s.run.monitoredEvents;
            instEvents += s.fade.instEvents;
            filtered += s.fade.filtered;
            occTotal += s.eqOccupancy.total();
            maxCycles = std::max(maxCycles, s.run.cycles);
            local += s.l2Local;
            remote += s.l2Remote;
            EXPECT_EQ(s.cluster, s.shard / (4 / clusters));
        }
        EXPECT_EQ(r.totalInstructions, insts);
        EXPECT_EQ(r.totalEvents, events);
        EXPECT_EQ(r.fade.instEvents, instEvents);
        EXPECT_EQ(r.fade.filtered, filtered);
        EXPECT_EQ(r.eqOccupancy.total(), occTotal);
        EXPECT_EQ(r.cycles, maxCycles);
        EXPECT_EQ(r.l2LocalAccesses, local);
        EXPECT_EQ(r.l2RemoteAccesses, remote);
    }
}

TEST(Topology, DirectoryRoutingInvariants)
{
    // Flat: one slice, every access local, home() constant.
    TopoRun flat = runTopology(2, "MemLeak", "hmmer", 1, 1);
    EXPECT_EQ(flat.result.l2RemoteAccesses, 0u);
    EXPECT_GT(flat.result.l2LocalAccesses, 0u);

    // Clustered: both routes exercised on every shard.
    TopoRun clustered = runTopology(4, "MemLeak", "hmmer", 2, 1);
    for (const ShardResult &s : clustered.result.shards) {
        SCOPED_TRACE(s.shard);
        EXPECT_GT(s.l2Local, 0u);
        EXPECT_GT(s.l2Remote, 0u);
    }
    // Remote hops cost extra cycles: the same workload takes longer
    // on a clustered LLC than behind the flat shared L2.
    TopoRun flat4 = runTopology(4, "MemLeak", "hmmer", 1, 1);
    EXPECT_GT(clustered.result.cycles, flat4.result.cycles);

    // The hash reaches every slice and stays in range.
    DirectoryParams p;
    p.clusters = 4;
    HomeDirectory dir(p);
    std::vector<bool> seen(4, false);
    for (Addr a = 0; a < 64 * 1024; a += 64)
        seen[dir.home(a)] = true;
    EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                            [](bool b) { return b; }));

    DirectoryParams one;
    HomeDirectory flatDir(one);
    for (Addr a = 0; a < 4096; a += 64)
        EXPECT_EQ(flatDir.home(a), 0u);
}

TEST(Topology, DirectoryPortChargesRemotePenalty)
{
    DirectoryParams p;
    p.clusters = 2;
    p.remoteLatency = 40;
    HomeDirectory dir(p);
    DirectoryPort port0(dir, 0);
    DirectoryPort port1(dir, 1);
    // An address homed on slice 0: local for port0, remote for port1.
    Addr a0 = 0;
    while (dir.home(a0) != 0)
        a0 += 64;

    unsigned missLocal = port0.access(a0, false);  // cold fill
    unsigned hitLocal = port0.access(a0, false);   // slice hit
    unsigned hitRemote = port1.access(a0, false);  // hit + penalty
    EXPECT_GT(missLocal, hitLocal);
    EXPECT_EQ(hitLocal, p.slice.latency);
    EXPECT_EQ(hitRemote, hitLocal + p.remoteLatency);

    EXPECT_EQ(port0.stats().localAccesses, 2u);
    EXPECT_EQ(port0.stats().remoteAccesses, 0u);
    EXPECT_EQ(port1.stats().localAccesses, 0u);
    EXPECT_EQ(port1.stats().remoteAccesses, 1u);
}

TEST(Topology, MultiFadeSteeringIsRoundRobinAndMerged)
{
    // Single shard, two filter units: strict rotation balances the
    // steered counts to within one event, merged stats equal the sum
    // of the units', and both units do real filtering work.
    SystemConfig scfg;
    scfg.fadesPerShard = 2;
    auto mon = makeMonitor("MemLeak");
    MonitoringSystem sys(scfg, specProfile("hmmer"), mon.get());
    sys.warmup(kWarm);
    sys.run(kRun);

    FadeGroup *g = sys.fadeGroup();
    ASSERT_NE(g, nullptr);
    ASSERT_EQ(g->size(), 2u);
    std::uint64_t s0 = g->steeredTo(0), s1 = g->steeredTo(1);
    EXPECT_GT(s0, 0u);
    EXPECT_GT(s1, 0u);
    std::uint64_t diff = s0 > s1 ? s0 - s1 : s1 - s0;
    EXPECT_LE(diff, 1u);

    FadeStats merged = g->stats();
    FadeStats sum = g->unit(0).stats();
    sum.merge(g->unit(1).stats());
    EXPECT_EQ(merged.instEvents, sum.instEvents);
    EXPECT_EQ(merged.filtered, sum.filtered);
    EXPECT_EQ(merged.unfiltered, sum.unfiltered);
    EXPECT_GT(g->unit(0).stats().instEvents, 0u);
    EXPECT_GT(g->unit(1).stats().instEvents, 0u);
    // Stack updates and high-level events serialized the group.
    EXPECT_GT(g->serialized(), 0u);
    EXPECT_EQ(merged.crossShardEvents, 0u);
}

TEST(Topology, MultiFadeHighLevelSerializationStaysSound)
{
    // TaintCheck depends on taint-source bulk updates ordering against
    // subsequent filtering; MemLeak on malloc/free ordering. Both must
    // run deterministically with two units and report identically
    // across engines.
    for (const char *mon : {"TaintCheck", "MemLeak"}) {
        SCOPED_TRACE(mon);
        TopoRun per = runTopology(2, mon, "mcf", 1, 2,
                                  SchedulerPolicy::Lockstep,
                                  Engine::PerCycle);
        TopoRun bat = runTopology(2, mon, "mcf", 1, 2,
                                  SchedulerPolicy::Lockstep,
                                  Engine::Batched);
        EXPECT_EQ(per.fingerprint, bat.fingerprint);
        EXPECT_EQ(per.reports, bat.reports);
    }
}

TEST(Topology, MultiFadeKeepsCleanRunsQuiet)
{
    // AddrCheck stays quiet on clean streams with one unit; the
    // group-serialized allocation events must keep it quiet with two.
    MultiCoreConfig cfg;
    cfg.numShards = 2;
    cfg.monitor = "AddrCheck";
    cfg.workloads = multiprogramWorkloads("hmmer");
    cfg.topology.fadesPerShard = 2;
    MultiCoreSystem sys(cfg);
    sys.warmup(kWarm);
    sys.run(kRun);
    for (unsigned i = 0; i < 2; ++i) {
        SCOPED_TRACE(i);
        EXPECT_TRUE(sys.monitor(i)->reports().empty());
    }
}

TEST(Topology, MultiFadeDrainsTheEventQueueFaster)
{
    // The point of multiple filter units: the same workload finishes
    // in fewer simulated cycles when the shard's EQ is drained by two
    // units instead of one.
    TopoRun one = runTopology(2, "MemLeak", "hmmer", 1, 1);
    TopoRun two = runTopology(2, "MemLeak", "hmmer", 1, 2);
    EXPECT_LT(two.result.cycles, one.result.cycles);
}

TEST(Topology, FadeGroupBounds)
{
    SystemConfig scfg;
    scfg.fadesPerShard = maxFadesPerShard;
    auto mon = makeMonitor("MemLeak");
    MonitoringSystem sys(scfg, specProfile("hmmer"), mon.get());
    sys.warmup(2000);
    RunResult r = sys.run(4000);
    EXPECT_GT(r.appInstructions, 0u);

    MonitorContext ctx(0);
    EXPECT_EXIT(FadeGroup(0, FadeParams{}, ctx, nullptr, 0),
                testing::ExitedWithCode(1), "unit count");
    EXPECT_EXIT(
        FadeGroup(maxFadesPerShard + 1, FadeParams{}, ctx, nullptr, 0),
        testing::ExitedWithCode(1), "unit count");
}

} // namespace fade
