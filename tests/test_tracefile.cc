/**
 * @file
 * Trace capture/replay tests: the golden-trace differential layer.
 *
 * - ReplayMatrix: capture -> replay is bit-identical (result
 *   fingerprint hash) for every monitor, across shard counts, both
 *   scheduler policies, both engines, and flat vs clustered topology.
 * - CaptureDoesNotPerturb: teeing the generator through CaptureSource
 *   leaves the live run's full fingerprint vector untouched, and the
 *   captured bytes are policy-invariant.
 * - RoundTripFuzz: randomized records (edge-case addresses included)
 *   survive encode/decode field for field; corrupted and truncated
 *   files fail with TraceError, never UB (run under ASan/UBSan in CI).
 * - GoldenCorpus: committed traces under tests/golden/ replay to the
 *   fingerprint hash recorded in their manifests.
 * - RunGrainReplay: the run-grain engine's modeled timing keeps it out
 *   of the cycle-exact hash matrix, but its captures end every stream
 *   at the exact retirement quota, so full-stream replays cover the
 *   identical instruction window under any engine — the functional
 *   fingerprints must then match bit for bit; golden traces replay
 *   deterministically under it.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "sim/random.hh"
#include "system/multicore.hh"
#include "testutil.hh"
#include "trace/profile.hh"
#include "trace/tracefile.hh"

namespace fade
{

namespace
{

constexpr std::uint64_t kWarm = 1000;
constexpr std::uint64_t kRun = 2500;

/** Self-deleting temp file path for trace round trips. */
using TempTrace = test::TempFile;

std::vector<std::uint8_t>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                     std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path, const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              std::streamsize(bytes.size()));
}

BenchProfile
profileOf(const std::string &monitor, const std::string &bench)
{
    return monitor == "AtomCheck" ? parallelProfile(bench)
                                  : specProfile(bench);
}

MultiCoreConfig
matrixConfig(const char *monitor, const char *bench, unsigned shards,
             unsigned clusters, unsigned fades)
{
    MultiCoreConfig cfg;
    cfg.monitor = monitor;
    cfg.workloads = {profileOf(monitor, bench)};
    cfg.numShards = shards;
    cfg.topology.clusters = clusters;
    cfg.topology.fadesPerShard = fades;
    return cfg;
}

std::vector<std::uint64_t>
drive(MultiCoreSystem &sys, std::uint64_t warm, std::uint64_t run)
{
    sys.warmup(warm);
    MultiCoreResult r = sys.run(run);
    return resultFingerprint(sys, r);
}

/** Capture a run into @p path; returns its fingerprint hash. */
std::uint64_t
captureTo(const std::string &path, MultiCoreConfig cfg,
          std::uint64_t warm, std::uint64_t run)
{
    cfg.traceOut = path;
    MultiCoreSystem sys(cfg);
    std::uint64_t h = fingerprintHash(drive(sys, warm, run));
    sys.closeTrace(h);
    return h;
}

/** Replay @p path under the given policy/engine; returns the hash. */
std::uint64_t
replayHash(const std::string &path, SchedulerPolicy pol, Engine eng)
{
    MultiCoreConfig cfg = replayConfig(path);
    cfg.scheduler.policy = pol;
    cfg.engine = eng;
    MultiCoreSystem sys(cfg);
    const TraceManifest &m = sys.traceReader()->manifest();
    return fingerprintHash(
        drive(sys, m.warmupInstructions, m.measureInstructions));
}

/** Capture one monitor on three shapes; replay each under every
 *  policy x engine combination and demand the captured hash. */
void
checkReplayMatrix(const char *monitor, const char *bench)
{
    struct Shape
    {
        unsigned shards, clusters, fades;
    };
    const Shape shapes[] = {{1, 1, 1}, {4, 1, 1}, {4, 2, 2}};
    for (const Shape &s : shapes) {
        TempTrace t;
        std::uint64_t h =
            captureTo(t.path(),
                      matrixConfig(monitor, bench, s.shards, s.clusters,
                                   s.fades),
                      kWarm, kRun);
        for (SchedulerPolicy pol : {SchedulerPolicy::Lockstep,
                                    SchedulerPolicy::ParallelBatched})
            for (Engine eng : {Engine::PerCycle, Engine::Batched})
                EXPECT_EQ(replayHash(t.path(), pol, eng), h)
                    << monitor << "/" << bench << " " << s.shards << "x"
                    << s.clusters << "x" << s.fades << " policy="
                    << int(pol) << " engine=" << int(eng);
    }
}

/** Random instruction with adversarial address/field distribution. */
Instruction
fuzzInst(Rng &rng)
{
    static const Addr edges[] = {
        0,          1,          0xFFFFFFFFull,       0x10000000ull,
        0x40000000ull, 0xE0000000ull, 0xF0000000ull,
        1ull << 63, ~std::uint64_t(0), (1ull << 63) - 1,
    };
    auto addr = [&]() -> Addr {
        switch (rng.range(4)) {
          case 0:
            return edges[rng.range(sizeof(edges) / sizeof(edges[0]))];
          case 1:
            return rng.next();
          default:
            return rng.next64();
        }
    };
    Instruction i;
    i.pc = addr();
    i.cls = InstClass(rng.range(unsigned(InstClass::NumClasses)));
    i.src1 = RegIndex(rng.range(64));
    i.src2 = RegIndex(rng.range(64));
    i.numSrc = std::uint8_t(rng.range(3));
    i.dst = RegIndex(rng.range(64));
    i.hasDst = rng.chance(0.5);
    i.memAddr = rng.chance(0.5) ? addr() : 0;
    i.memSize = rng.chance(0.8) ? 4 : std::uint8_t(rng.range(16));
    i.tid = ThreadId(rng.range(8));
    i.mispredict = rng.chance(0.1);
    i.mayPropagate = rng.chance(0.7);
    i.frameBytes = rng.chance(0.3) ? std::uint32_t(rng.next()) : 0;
    i.frameBase = rng.chance(0.3) ? addr() : 0;
    i.hlKind = EventKind(rng.range(unsigned(EventKind::ThreadJoin) + 1));
    i.truth = std::uint8_t(rng.range(32));
    return i;
}

void
expectSameInst(const Instruction &a, const Instruction &b, std::size_t at)
{
    EXPECT_EQ(a.pc, b.pc) << "record " << at;
    EXPECT_EQ(a.cls, b.cls) << "record " << at;
    EXPECT_EQ(a.src1, b.src1) << "record " << at;
    EXPECT_EQ(a.src2, b.src2) << "record " << at;
    EXPECT_EQ(a.numSrc, b.numSrc) << "record " << at;
    EXPECT_EQ(a.dst, b.dst) << "record " << at;
    EXPECT_EQ(a.hasDst, b.hasDst) << "record " << at;
    EXPECT_EQ(a.memAddr, b.memAddr) << "record " << at;
    EXPECT_EQ(a.memSize, b.memSize) << "record " << at;
    EXPECT_EQ(a.tid, b.tid) << "record " << at;
    EXPECT_EQ(a.mispredict, b.mispredict) << "record " << at;
    EXPECT_EQ(a.mayPropagate, b.mayPropagate) << "record " << at;
    EXPECT_EQ(a.frameBytes, b.frameBytes) << "record " << at;
    EXPECT_EQ(a.frameBase, b.frameBase) << "record " << at;
    EXPECT_EQ(a.hlKind, b.hlKind) << "record " << at;
    EXPECT_EQ(a.truth, b.truth) << "record " << at;
}

/** Write a small two-stream trace of fuzz records; returns them. */
std::vector<std::vector<Instruction>>
writeFuzzTrace(const std::string &path, std::uint64_t seed,
               std::size_t perStream, bool withManifest)
{
    Rng rng(seed);
    TraceWriter w(path);
    std::vector<std::vector<Instruction>> ref(2);
    for (unsigned s = 0; s < 2; ++s) {
        TraceStreamMeta meta;
        meta.profile = s == 0 ? "fuzz-a" : "fuzz-b";
        meta.seed = seed + s;
        meta.numThreads = s + 1;
        meta.procThreads = s * 4; // stream 1 records a 4-thread process
        w.addStream(meta);
    }
    for (std::size_t n = 0; n < perStream; ++n) {
        for (unsigned s = 0; s < 2; ++s) {
            Instruction i = fuzzInst(rng);
            ref[s].push_back(i);
            w.append(s, i);
        }
        if (rng.chance(0.01)) // exercise block boundaries
            w.flush(rng.range(2));
    }
    if (withManifest) {
        TraceManifest m;
        m.present = true;
        m.monitor = "MemCheck";
        m.warmupInstructions = 123;
        m.measureInstructions = 456;
        m.numShards = 2;
        m.hasFingerprint = true;
        m.fingerprintHash = 0xDEADBEEFCAFEF00DULL;
        w.setManifest(m);
    }
    w.close();
    return ref;
}

/** True when reading (parse + full decode of every stream) throws
 *  TraceError. Any other outcome (success, other exception, crash)
 *  reports false / fails the death harness. */
bool
readRejects(const std::string &path)
{
    try {
        TraceReader r(path);
        Instruction inst;
        for (unsigned s = 0; s < r.numStreams(); ++s) {
            TraceReader::Cursor c = r.cursor(s);
            while (c.next(inst)) {
            }
        }
    } catch (const TraceError &) {
        return true;
    }
    return false;
}

} // namespace

// ---------------------------------------------------------------------
// Replay bit-identity matrix (tentpole correctness contract)
// ---------------------------------------------------------------------

TEST(ReplayMatrix, MemLeak)
{
    checkReplayMatrix("MemLeak", "bzip");
}

TEST(ReplayMatrix, AddrCheck)
{
    checkReplayMatrix("AddrCheck", "gcc");
}

TEST(ReplayMatrix, MemCheck)
{
    checkReplayMatrix("MemCheck", "hmmer");
}

TEST(ReplayMatrix, TaintCheck)
{
    checkReplayMatrix("TaintCheck", "mcf");
}

TEST(ReplayMatrix, AtomCheck)
{
    checkReplayMatrix("AtomCheck", "ocean");
}

TEST(ReplayMatrix, UnmonitoredBaseline)
{
    checkReplayMatrix("", "astar");
}

// ---------------------------------------------------------------------
// Capture transparency
// ---------------------------------------------------------------------

TEST(Capture, DoesNotPerturbLiveRun)
{
    MultiCoreConfig cfg = matrixConfig("MemLeak", "hmmer", 2, 1, 1);
    MultiCoreSystem live(cfg);
    std::vector<std::uint64_t> liveFp = drive(live, kWarm, kRun);

    TempTrace t;
    cfg.traceOut = t.path();
    MultiCoreSystem taped(cfg);
    std::vector<std::uint64_t> tapedFp = drive(taped, kWarm, kRun);
    taped.closeTrace(fingerprintHash(tapedFp));

    // Full vectors, not just hashes: capture must be invisible.
    EXPECT_EQ(liveFp, tapedFp);
}

TEST(Capture, BytesPolicyInvariant)
{
    // The scheduler flushes capture buffers at every slice barrier in
    // shard order, so the file bytes cannot depend on which host
    // thread drove which shard.
    TempTrace a, b;
    MultiCoreConfig cfg = matrixConfig("AtomCheck", "ocean", 2, 1, 1);
    cfg.scheduler.policy = SchedulerPolicy::Lockstep;
    captureTo(a.path(), cfg, kWarm, kRun);
    cfg.scheduler.policy = SchedulerPolicy::ParallelBatched;
    captureTo(b.path(), cfg, kWarm, kRun);
    EXPECT_EQ(readFile(a.path()), readFile(b.path()));
}

TEST(Capture, ConfigFingerprintStamped)
{
    TempTrace t;
    MultiCoreConfig cfg = matrixConfig("AddrCheck", "astar", 1, 1, 1);
    captureTo(t.path(), cfg, 100, 200);
    cfg.traceOut.clear();
    TraceReader r(t.path());
    EXPECT_EQ(r.configFingerprint(), traceConfigFingerprint(cfg));
    EXPECT_NE(r.configFingerprint(), 0u);
}

// ---------------------------------------------------------------------
// Round-trip fuzz (satellite 1)
// ---------------------------------------------------------------------

TEST(RoundTrip, FuzzedRecordsSurviveExactly)
{
    TempTrace t;
    auto ref = writeFuzzTrace(t.path(), 0xF00D, 4000, true);

    TraceReader r(t.path());
    ASSERT_EQ(r.numStreams(), 2u);
    for (unsigned s = 0; s < 2; ++s) {
        EXPECT_EQ(r.stream(s).records, ref[s].size());
        TraceReader::Cursor c = r.cursor(s);
        Instruction got;
        for (std::size_t n = 0; n < ref[s].size(); ++n) {
            ASSERT_TRUE(c.next(got)) << "stream " << s << " record " << n;
            expectSameInst(ref[s][n], got, n);
        }
        EXPECT_FALSE(c.next(got));
        EXPECT_EQ(c.remaining(), 0u);
    }
}

TEST(RoundTrip, ManifestAndMetadata)
{
    TempTrace t;
    writeFuzzTrace(t.path(), 0xBEEF, 64, true);

    TraceReader r(t.path());
    EXPECT_EQ(r.version(), traceFormatVersion);
    EXPECT_EQ(r.stream(0).profile, "fuzz-a");
    EXPECT_EQ(r.stream(1).profile, "fuzz-b");
    EXPECT_EQ(r.stream(0).seed, 0xBEEFu);
    EXPECT_EQ(r.stream(1).seed, 0xBEF0u);
    EXPECT_EQ(r.stream(0).numThreads, 1u);
    EXPECT_EQ(r.stream(1).numThreads, 2u);
    EXPECT_EQ(r.stream(0).procThreads, 0u);
    EXPECT_EQ(r.stream(1).procThreads, 4u);

    const TraceManifest &m = r.manifest();
    ASSERT_TRUE(m.present);
    EXPECT_EQ(m.monitor, "MemCheck");
    EXPECT_EQ(m.warmupInstructions, 123u);
    EXPECT_EQ(m.measureInstructions, 456u);
    EXPECT_EQ(m.numShards, 2u);
    ASSERT_TRUE(m.hasFingerprint);
    EXPECT_EQ(m.fingerprintHash, 0xDEADBEEFCAFEF00DULL);
}

TEST(RoundTrip, NoManifestStillReadable)
{
    TempTrace t;
    writeFuzzTrace(t.path(), 0xABCD, 32, false);
    TraceReader r(t.path());
    EXPECT_FALSE(r.manifest().present);
    EXPECT_EQ(r.stream(0).records, 32u);
}

TEST(RoundTrip, AutoFlushAtBlockBoundary)
{
    TempTrace t;
    const std::size_t n = TraceWriter::maxBlockRecords + 5;
    {
        Rng rng(7);
        TraceWriter w(t.path());
        TraceStreamMeta meta;
        meta.profile = "big";
        w.addStream(meta);
        for (std::size_t i = 0; i < n; ++i)
            w.append(0, fuzzInst(rng));
        w.close();
    }
    TraceReader r(t.path());
    EXPECT_EQ(r.stream(0).records, n);
    // One full block auto-flushed plus the tail from close().
    EXPECT_EQ(r.streamBlocks(0), 2u);
}

TEST(RoundTrip, SyncRecordKinds)
{
    // The v2 thread/sync record kinds, spelled out one by one: lock
    // ops carry (lock addr, acquisition index), thread ops carry
    // (thread object addr, child tid), and the relocated mispredict
    // bit must survive alongside a nonzero hlKind.
    const EventKind kinds[] = {
        EventKind::TaintSource, EventKind::LockAcquire,
        EventKind::LockRelease, EventKind::ThreadCreate,
        EventKind::ThreadJoin,
    };
    TempTrace t;
    std::vector<Instruction> ref;
    {
        TraceWriter w(t.path());
        TraceStreamMeta meta;
        meta.profile = "sync";
        meta.procThreads = 4;
        w.addStream(meta);
        Addr pc = 0x00800000;
        for (EventKind k : kinds) {
            Instruction i;
            i.cls = InstClass::HighLevel;
            i.pc = pc;
            pc += 4;
            i.hlKind = k;
            i.frameBase = 0x40040000 + 64 * Addr(k);
            i.frameBytes = std::uint32_t(k);
            i.tid = ThreadId(unsigned(k) % 4);
            i.mispredict = true; // must ride flags1 bit 7, not hlKind
            ref.push_back(i);
            w.append(0, i);
        }
        w.close();
    }
    TraceReader r(t.path());
    EXPECT_EQ(r.stream(0).procThreads, 4u);
    TraceReader::Cursor c = r.cursor(0);
    Instruction got;
    for (std::size_t n = 0; n < ref.size(); ++n) {
        ASSERT_TRUE(c.next(got)) << "record " << n;
        expectSameInst(ref[n], got, n);
    }
    EXPECT_FALSE(c.next(got));
}

// ---------------------------------------------------------------------
// Malformed input: clean TraceError diagnostics, never UB (satellite 1)
// ---------------------------------------------------------------------

TEST(Malformed, MissingEmptyAndGarbageFiles)
{
    EXPECT_THROW(TraceReader("/nonexistent/fade.ftrace"), TraceError);

    TempTrace empty;
    writeFile(empty.path(), {});
    EXPECT_THROW(TraceReader(empty.path()), TraceError);

    TempTrace garbage;
    Rng rng(42);
    std::vector<std::uint8_t> junk(4096);
    for (auto &b : junk)
        b = std::uint8_t(rng.range(256));
    writeFile(garbage.path(), junk);
    EXPECT_THROW(TraceReader(garbage.path()), TraceError);

    // Valid magic followed by garbage must also be caught (header CRC).
    std::memcpy(junk.data(), "FADETRC1", 8);
    writeFile(garbage.path(), junk);
    EXPECT_THROW(TraceReader(garbage.path()), TraceError);
}

TEST(Malformed, OldVersionRejected)
{
    // A structurally well-formed v1 header (stream meta before the
    // procThreads field existed, correct CRC) must be refused by the
    // version check specifically — not misparsed, not a CRC error.
    std::vector<std::uint8_t> bytes = {'F', 'A', 'D', 'E',
                                       'T', 'R', 'C', '1'};
    std::vector<std::uint8_t> body;
    auto varint = [&body](std::uint64_t v) {
        do {
            std::uint8_t b = v & 0x7F;
            v >>= 7;
            body.push_back(b | (v ? 0x80 : 0));
        } while (v);
    };
    varint(1); // format version 1
    varint(1); // one stream
    const char *prof = "old";
    varint(3);
    body.insert(body.end(), prof, prof + 3);
    varint(0x1234); // seed
    varint(1);      // numThreads (v1 meta ends here before layout)
    varint(0x10000000);
    varint(0x1000);
    varint(0xE0000000);
    varint(0x4000);
    for (int i = 0; i < 8; ++i) // config fingerprint (fixed64)
        body.push_back(0);
    // Standard reflected CRC-32 over the header body, as the writer
    // computes it.
    std::uint32_t crc = 0xFFFFFFFFu;
    for (std::uint8_t b : body) {
        crc ^= b;
        for (int k = 0; k < 8; ++k)
            crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
    }
    crc ^= 0xFFFFFFFFu;
    bytes.insert(bytes.end(), body.begin(), body.end());
    for (int i = 0; i < 4; ++i)
        bytes.push_back(std::uint8_t(crc >> (8 * i)));

    TempTrace t;
    writeFile(t.path(), bytes);
    try {
        TraceReader r(t.path());
        FAIL() << "v1 trace accepted";
    } catch (const TraceError &e) {
        EXPECT_NE(std::string(e.what()).find("unsupported trace version 1"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Malformed, EveryTruncationRejected)
{
    TempTrace t;
    writeFuzzTrace(t.path(), 0x7777, 256, true);
    std::vector<std::uint8_t> whole = readFile(t.path());
    ASSERT_GT(whole.size(), 64u);

    TempTrace cut;
    for (std::size_t len = 0; len < whole.size();
         len += 1 + len / 16) { // dense early, strided later
        std::vector<std::uint8_t> prefix(whole.begin(),
                                         whole.begin() +
                                             std::ptrdiff_t(len));
        writeFile(cut.path(), prefix);
        EXPECT_TRUE(readRejects(cut.path())) << "prefix " << len;
    }
    // The all-but-one-byte prefix specifically (end magic broken).
    std::vector<std::uint8_t> prefix(whole.begin(), whole.end() - 1);
    writeFile(cut.path(), prefix);
    EXPECT_TRUE(readRejects(cut.path()));
}

TEST(Malformed, ByteFlipsRejected)
{
    TempTrace t;
    writeFuzzTrace(t.path(), 0x5151, 256, true);
    std::vector<std::uint8_t> whole = readFile(t.path());

    TempTrace bad;
    for (std::size_t at = 0; at < whole.size();
         at += at < 128 ? 1 : 7) { // every header byte, strided body
        std::vector<std::uint8_t> mut = whole;
        mut[at] ^= 0xFF;
        writeFile(bad.path(), mut);
        EXPECT_TRUE(readRejects(bad.path())) << "flip at byte " << at;
    }
}

// ---------------------------------------------------------------------
// Replay-side guardrails
// ---------------------------------------------------------------------

TEST(ReplayGuards, WorkloadMismatchIsFatal)
{
    TempTrace t;
    captureTo(t.path(), matrixConfig("MemLeak", "bzip", 1, 1, 1), 200,
              400);
    MultiCoreConfig cfg = replayConfig(t.path());
    cfg.workloads[0].seed += 1;
    EXPECT_EXIT(MultiCoreSystem sys(cfg), testing::ExitedWithCode(1),
                "was captured from workload");
}

TEST(ReplayGuards, StreamCountMismatchIsFatal)
{
    TempTrace t;
    captureTo(t.path(), matrixConfig("MemLeak", "bzip", 1, 1, 1), 200,
              400);
    MultiCoreConfig cfg = replayConfig(t.path());
    // shardsPerCluster is authoritative over numShards when set.
    cfg.topology.shardsPerCluster = 2;
    EXPECT_EXIT(MultiCoreSystem sys(cfg), testing::ExitedWithCode(1),
                "streams but this system has");
}

TEST(ReplayGuards, FetchPastEndOfStreamPanics)
{
    TempTrace t;
    {
        Rng rng(3);
        TraceWriter w(t.path());
        TraceStreamMeta meta;
        meta.profile = "tiny";
        w.addStream(meta);
        for (int i = 0; i < 5; ++i)
            w.append(0, fuzzInst(rng));
        w.close();
    }
    TraceReader r(t.path());
    ReplaySource src(r, 0);
    Instruction got;
    for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(src.available());
        got = src.fetch();
    }
    EXPECT_FALSE(src.available());
    EXPECT_EQ(src.fetchNext(), nullptr);
    EXPECT_EQ(src.consumed(), 5u);
    EXPECT_EQ(src.remaining(), 0u);
    EXPECT_DEATH(src.fetch(), "exhausted");
}

TEST(ReplayGuards, ReplayConfigNeedsManifest)
{
    TempTrace t;
    writeFuzzTrace(t.path(), 0x1234, 16, false);
    EXPECT_THROW(replayConfig(t.path()), TraceError);
}

// ---------------------------------------------------------------------
// Golden corpus (committed traces; CI replays them on every change)
// ---------------------------------------------------------------------

const char *const kGoldenFiles[] = {
    "hmmer_memleak_n1.ftrace",   "gcc_addrcheck_n4.ftrace",
    "mcf_taintcheck_n1.ftrace",  "ocean_atomcheck_n2.ftrace",
    "astar_memcheck_2x2x2.ftrace",
    "ocean_mt4_racecheck_2x2.ftrace",
};

std::string
goldenPath(const char *f)
{
    return std::string(FADE_SOURCE_DIR "/tests/golden/") + f;
}

TEST(GoldenCorpus, ReplaysToRecordedHash)
{
    for (const char *f : kGoldenFiles) {
        std::string path = goldenPath(f);
        SCOPED_TRACE(path);
        TraceReader r(path);
        ASSERT_TRUE(r.manifest().present);
        ASSERT_TRUE(r.manifest().hasFingerprint);
        EXPECT_EQ(replayHash(path, SchedulerPolicy::Lockstep,
                             Engine::PerCycle),
                  r.manifest().fingerprintHash);
    }
}

// ---------------------------------------------------------------------
// Run-grain engine (modeled timing: functional equality, not hashes)
// ---------------------------------------------------------------------

/** Replay the full captured window under @p eng and return the
 *  engine-invariant functional fingerprint. */
std::vector<std::uint64_t>
replayFunctional(const std::string &path, Engine eng)
{
    MultiCoreConfig cfg = replayConfig(path);
    cfg.engine = eng;
    MultiCoreSystem sys(cfg);
    const TraceManifest &m = sys.traceReader()->manifest();
    sys.warmup(m.warmupInstructions);
    sys.run(m.measureInstructions);
    return sys.functionalFingerprint();
}

TEST(RunGrainReplay, CapturedStreamsFunctionallyEngineInvariant)
{
    // A run-grain capture ends every stream at the exact per-shard
    // retirement quota: the engine fetches only what it retires, so
    // there is no commit-width overshoot and no speculative fetch-ahead
    // tail. Replaying the whole stream therefore covers the identical
    // instruction window under the per-cycle reference too (the stream
    // runs out exactly at the quota, so per-cycle cannot overshoot
    // either), and every functional value — retirement/event counts,
    // filter verdicts, handler work, bug reports — must match bit for
    // bit. The batched engine is excluded: its run-to-stall frontend
    // demands fetch-ahead margin beyond the retirement target, which an
    // exact-quota stream cannot supply (it is bit-identical to
    // per-cycle on generated streams, so its coverage rides on the
    // per-cycle leg).
    struct Shape
    {
        unsigned shards, clusters, fades;
    };
    const Shape shapes[] = {{1, 1, 1}, {4, 2, 2}};
    for (const Shape &s : shapes) {
        SCOPED_TRACE(testing::Message() << s.shards << "x" << s.clusters
                                        << "x" << s.fades);
        TempTrace t;
        std::vector<std::uint64_t> live;
        {
            MultiCoreConfig cfg = matrixConfig("AddrCheck", "gcc",
                                               s.shards, s.clusters,
                                               s.fades);
            cfg.engine = Engine::RunGrain;
            cfg.traceOut = t.path();
            MultiCoreSystem sys(cfg);
            sys.run(kWarm + kRun);
            live = sys.functionalFingerprint();
            sys.closeTrace(0);
        }
        EXPECT_EQ(replayFunctional(t.path(), Engine::RunGrain), live);
        EXPECT_EQ(replayFunctional(t.path(), Engine::PerCycle), live);
    }
}

TEST(RunGrainReplay, GoldenCorpusReplaysDeterministically)
{
    // The goldens were captured under the per-cycle engine with its
    // fetch-ahead margin, so the run-grain engine (which fetches less)
    // replays them fine. Its full-result hash legitimately differs from
    // the recorded per-cycle hash (modeled timing), but must be
    // reproducible run over run — that is what lets run-grain results
    // be pinned by goldens of their own.
    for (const char *f : kGoldenFiles) {
        std::string path = goldenPath(f);
        SCOPED_TRACE(path);
        std::uint64_t h = replayHash(path, SchedulerPolicy::Lockstep,
                                     Engine::RunGrain);
        EXPECT_EQ(replayHash(path, SchedulerPolicy::Lockstep,
                             Engine::RunGrain),
                  h);
    }
}

} // namespace fade
