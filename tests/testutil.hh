/**
 * @file
 * Shared test helpers: the self-deleting temp-file RAII wrapper used by
 * every suite that round-trips files through disk (trace capture,
 * golden replay, threaded-matrix capture tests).
 */

#ifndef FADE_TESTS_TESTUTIL_HH
#define FADE_TESTS_TESTUTIL_HH

#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

namespace fade::test
{

/** Self-deleting temporary file (mkstemp-backed RAII path). */
class TempFile
{
  public:
    explicit TempFile(const char *prefix = "fade_test")
    {
        std::string tmpl = std::string("/tmp/") + prefix + "_XXXXXX";
        std::vector<char> buf(tmpl.begin(), tmpl.end());
        buf.push_back('\0');
        int fd = ::mkstemp(buf.data());
        if (fd >= 0)
            ::close(fd);
        path_ = buf.data();
    }

    TempFile(const TempFile &) = delete;
    TempFile &operator=(const TempFile &) = delete;

    ~TempFile() { std::remove(path_.c_str()); }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

} // namespace fade::test

#endif // FADE_TESTS_TESTUTIL_HH
