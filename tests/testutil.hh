/**
 * @file
 * Shared test helpers: self-deleting temp-file and temp-directory RAII
 * wrappers used by every suite that round-trips files through disk
 * (trace capture, golden replay, threaded-matrix capture tests), and
 * the unique-socket-path helper the daemon tests bind their unix
 * sockets under.
 */

#ifndef FADE_TESTS_TESTUTIL_HH
#define FADE_TESTS_TESTUTIL_HH

#include <dirent.h>
#include <stdlib.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

namespace fade::test
{

/** Self-deleting temporary file (mkstemp-backed RAII path). */
class TempFile
{
  public:
    explicit TempFile(const char *prefix = "fade_test")
    {
        std::string tmpl = std::string("/tmp/") + prefix + "_XXXXXX";
        std::vector<char> buf(tmpl.begin(), tmpl.end());
        buf.push_back('\0');
        int fd = ::mkstemp(buf.data());
        if (fd >= 0)
            ::close(fd);
        path_ = buf.data();
    }

    TempFile(const TempFile &) = delete;
    TempFile &operator=(const TempFile &) = delete;

    ~TempFile() { std::remove(path_.c_str()); }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** Self-deleting temporary directory (mkdtemp-backed RAII path).
 *  Removes its remaining entries — one level, no subdirectories —
 *  and itself on destruction. */
class TempDir
{
  public:
    explicit TempDir(const char *prefix = "fade_test")
    {
        std::string tmpl = std::string("/tmp/") + prefix + "_XXXXXX";
        std::vector<char> buf(tmpl.begin(), tmpl.end());
        buf.push_back('\0');
        if (::mkdtemp(buf.data()))
            path_ = buf.data();
    }

    TempDir(const TempDir &) = delete;
    TempDir &operator=(const TempDir &) = delete;

    ~TempDir()
    {
        if (path_.empty())
            return;
        if (DIR *d = ::opendir(path_.c_str())) {
            while (dirent *e = ::readdir(d)) {
                std::string n = e->d_name;
                if (n != "." && n != "..")
                    std::remove((path_ + "/" + n).c_str());
            }
            ::closedir(d);
        }
        ::rmdir(path_.c_str());
    }

    const std::string &path() const { return path_; }

    /** A path inside the directory (cleaned up with it). */
    std::string file(const char *name) const
    {
        return path_ + "/" + name;
    }

  private:
    std::string path_;
};

/**
 * A unique, unused unix-socket path, short enough for sockaddr_un
 * (its own mkdtemp directory keeps the name under the ~100-char
 * limit regardless of the test name). The socket file and directory
 * are removed on destruction.
 */
class UniqueSocketPath
{
  public:
    UniqueSocketPath() : dir_("fade_sock"), path_(dir_.file("d.sock"))
    {}

    const std::string &path() const { return path_; }

  private:
    TempDir dir_;
    std::string path_;
};

} // namespace fade::test

#endif // FADE_TESTS_TESTUTIL_HH
